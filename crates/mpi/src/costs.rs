//! Calibrated MPICH-layer costs (Table 1 and §6 of the paper).

use bband_sim::SimDuration;

/// Per-operation costs of the MPICH layer.
#[derive(Debug, Clone, PartialEq)]
pub struct MpiCosts {
    /// `MPI_Isend`'s own work before calling `ucp_tag_send_nb`: datatype
    /// check, interface selection, request allocation — 24.37 ns (Table 1).
    pub isend: SimDuration,
    /// `MPI_Irecv`'s own work before `ucp_tag_recv_nb`. Not published
    /// separately (the paper assumes receive initiation overlaps the
    /// latency path); modeled symmetric to `isend`.
    pub irecv: SimDuration,
    /// Fixed prologue of a blocking `MPI_Wait` before the progress loop
    /// spins (request inspection, state setup). Part of the 293.29 ns
    /// MPICH wait total that overlaps the wait itself.
    pub wait_prologue: SimDuration,
    /// MPICH progress-engine cost per unsuccessful loop iteration (also
    /// overlapped by the wait).
    pub wait_iteration: SimDuration,
    /// The registered MPICH callback for a completed receive: 47.99 ns.
    pub recv_callback: SimDuration,
    /// Time spent in MPICH *after* a successful `ucp_worker_progress`
    /// returns: 36.89 ns (§6).
    pub wait_epilogue: SimDuration,
    /// Per-operation MPICH cost of progressing send completions during
    /// `MPI_Waitall` (the MPICH share of HLP_tx_prog ≈ 58.86 ns; split
    /// with UCP per DESIGN.md).
    pub waitall_per_op: SimDuration,
}

impl Default for MpiCosts {
    fn default() -> Self {
        MpiCosts {
            isend: SimDuration::from_ns_f64(24.37),
            irecv: SimDuration::from_ns_f64(24.37),
            wait_prologue: SimDuration::from_ns_f64(58.0),
            wait_iteration: SimDuration::from_ns_f64(50.0),
            recv_callback: SimDuration::from_ns_f64(47.99),
            wait_epilogue: SimDuration::from_ns_f64(36.89),
            waitall_per_op: SimDuration::from_ns_f64(40.0),
        }
    }
}

impl MpiCosts {
    /// The paper's `HLP_post`: MPICH + UCP send-side work (26.56 ns with
    /// the default UCP costs).
    pub fn hlp_post_with(&self, ucp_tag_send: SimDuration) -> SimDuration {
        self.isend + ucp_tag_send
    }

    /// The paper's `HLP_rx_prog`: UCP callback + MPICH callback + MPICH
    /// epilogue = 224.66 ns.
    pub fn hlp_rx_prog_with(&self, ucp_recv_callback: SimDuration) -> SimDuration {
        ucp_recv_callback + self.recv_callback + self.wait_epilogue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isend_matches_table1() {
        assert!((MpiCosts::default().isend.as_ns_f64() - 24.37).abs() < 1e-9);
    }

    #[test]
    fn hlp_post_totals_26_56() {
        let c = MpiCosts::default();
        let total = c.hlp_post_with(SimDuration::from_ns_f64(2.19));
        assert!(
            (total.as_ns_f64() - 26.56).abs() < 0.001,
            "HLP_post = {total}"
        );
    }

    #[test]
    fn hlp_rx_prog_totals_224_66() {
        let c = MpiCosts::default();
        let total = c.hlp_rx_prog_with(SimDuration::from_ns_f64(139.78));
        assert!(
            (total.as_ns_f64() - 224.66).abs() < 0.001,
            "HLP_rx_prog = {total}"
        );
    }
}
