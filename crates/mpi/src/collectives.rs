//! Collectives — "UCP implements high-level communication protocols such
//! as collectives" (§5). Three classic small-message algorithms built on
//! the point-to-point layer, plus the multi-rank co-simulation driver that
//! runs them:
//!
//! * **barrier** — dissemination: ⌈log₂N⌉ rounds, in round *r* rank *i*
//!   sends to *(i + 2^r) mod N* and receives from *(i − 2^r) mod N*;
//! * **broadcast** — binomial tree from the root;
//! * **allreduce** — recursive doubling (pairwise exchange with *i ⊕ 2^r*).
//!
//! The driver steps rank state machines in min-clock order against the
//! shared hardware event queue, so no rank ever observes hardware from
//! another rank's future — the discrete-event analogue of how a real
//! machine interleaves cores.

use crate::costs::MpiCosts;
use crate::proc::{MpiProcess, MpiRequest, RequestState};
use bband_fabric::{NetworkModel, NodeId};
use bband_hlp::{UcpCosts, UcpWorker};
use bband_llp::{LlpCosts, Worker};
use bband_nic::{Cluster, NicConfig};
use bband_pcie::{LinkTap, NullTap};
use bband_profiling::RecoveryCounters;
use bband_sim::{SimTime, WorkerPool};

/// Which collective to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Collective {
    /// Dissemination barrier.
    Barrier,
    /// Binomial-tree broadcast of `bytes` from `root`.
    Bcast { root: u32, bytes: u32 },
    /// Recursive-doubling allreduce of `bytes`.
    Allreduce { bytes: u32 },
}

/// Result of one collective run.
#[derive(Debug, Clone)]
pub struct CollectiveReport {
    /// Virtual time from the start of the run to the last rank finishing.
    pub completion: SimTime,
    /// Rounds executed (= ⌈log₂N⌉).
    pub rounds: u32,
    /// Recovery engagement observed by the cluster over the whole job so
    /// far (credit-starved RCs parking MMIO writes, Markov stall windows).
    /// Clean unless a `--faults` plan's credit/stall overrides apply.
    pub counters: RecoveryCounters,
}

#[derive(Debug)]
enum RankState {
    /// Ready to start round `round`.
    StartRound {
        round: u32,
    },
    /// Waiting for this round's requests.
    Waiting {
        round: u32,
        reqs: Vec<MpiRequest>,
    },
    Done,
}

/// Run a collective across `ranks` (one rank per node, power-of-two count)
/// and return timing. The ranks are left at quiescence, usable for
/// subsequent operations.
pub fn run_collective(
    cluster: &mut Cluster,
    ranks: &mut [MpiProcess],
    op: Collective,
    tap: &mut dyn LinkTap,
) -> CollectiveReport {
    let n = ranks.len() as u32;
    assert!(n >= 2 && n.is_power_of_two(), "power-of-two ranks only");
    let rounds = n.trailing_zeros();
    let start = ranks.iter().map(|r| r.now()).max().expect("ranks");
    // Align rank clocks at the collective's entry (as a preceding barrier
    // or compute phase would).
    for r in ranks.iter_mut() {
        r.ucp_mut().uct_mut().cpu_mut().advance_to(start);
    }
    let mut states: Vec<RankState> = (0..n).map(|_| RankState::StartRound { round: 0 }).collect();
    // Unique-ish tag space per collective instance: fold the start time in
    // so back-to-back collectives never collide.
    let base_tag = ((start.as_ps() >> 10) & 0x3FFF) as i64;

    let mut guard = 0u64;
    while states.iter().any(|s| !matches!(s, RankState::Done)) {
        guard += 1;
        assert!(guard < 2_000_000, "collective diverged");
        // Pick the active (non-done) rank with the smallest clock.
        let idx = (0..ranks.len())
            .filter(|&i| !matches!(states[i], RankState::Done))
            .min_by_key(|&i| ranks[i].now())
            .expect("someone is active");
        let rank_n = idx as u32;
        match &mut states[idx] {
            RankState::StartRound { round } => {
                let r = *round;
                if r >= rounds {
                    states[idx] = RankState::Done;
                    continue;
                }
                let mut reqs = Vec::new();
                let tag = base_tag << 4 | r as i64;
                match op {
                    Collective::Barrier => {
                        // Dissemination: send to (i + 2^r), recv from (i - 2^r).
                        let to = NodeId((rank_n + (1 << r)) % n);
                        reqs.push(ranks[idx].isend(cluster, to, 1, tag, tap));
                        reqs.push(ranks[idx].irecv(tag));
                    }
                    Collective::Bcast { root, bytes } => {
                        // Binomial tree, root-relative rank.
                        let vrank = (rank_n + n - root) % n;
                        if vrank < (1 << r) {
                            // Has the data: send to vrank + 2^r if in range.
                            let peer_v = vrank + (1 << r);
                            if peer_v < n {
                                let to = NodeId((peer_v + root) % n);
                                reqs.push(ranks[idx].isend(cluster, to, bytes, tag, tap));
                            }
                        } else if vrank < (1 << (r + 1)) {
                            // Receives the data this round.
                            reqs.push(ranks[idx].irecv(tag));
                        }
                    }
                    Collective::Allreduce { bytes } => {
                        // Recursive doubling: exchange with i ^ 2^r.
                        let peer = NodeId(rank_n ^ (1 << r));
                        reqs.push(ranks[idx].isend(cluster, peer, bytes, tag, tap));
                        reqs.push(ranks[idx].irecv(tag));
                    }
                }
                states[idx] = RankState::Waiting { round: r, reqs };
            }
            RankState::Waiting { round, reqs } => {
                let r = *round;
                let done = reqs
                    .iter()
                    .all(|q| ranks[idx].state(*q) == RequestState::Complete);
                if done {
                    states[idx] = RankState::StartRound { round: r + 1 };
                    continue;
                }
                // One progress pulse; if nothing changed, fast-forward this
                // (minimum-clock) rank to the next hardware instant.
                let progressed = ranks[idx].pump(cluster, tap);
                if !progressed {
                    let qp = ranks[idx].ucp().uct().qp();
                    let node = ranks[idx].node();
                    let hw = cluster.next_event_time();
                    let vis = cluster.next_cqe_visible_at(node, qp);
                    let next = match (hw, vis) {
                        (Some(a), Some(b)) => Some(if a <= b { a } else { b }),
                        (a, b) => a.or(b),
                    };
                    if let Some(t) = next {
                        ranks[idx].ucp_mut().uct_mut().cpu_mut().advance_to(t);
                    }
                    // If there is nothing at all pending, another rank must
                    // act first; the min-clock loop will pick it once our
                    // clock advances past it. Nudge by one progress cost to
                    // avoid a spin at identical clocks.
                }
            }
            RankState::Done => unreachable!("filtered above"),
        }
    }
    let end = ranks.iter().map(|r| r.now()).max().expect("ranks");
    CollectiveReport {
        completion: end,
        rounds,
        counters: cluster.recovery_counters(),
    }
}

/// Build a deterministic `n`-rank job (cluster + initialized MPI ranks)
/// for the scaling driver. Seeding is a pure function of `(seed, rank)`,
/// so two jobs built with the same arguments are identical. `credits`
/// shrinks the RC posted-credit pools to `(hdr, data, update_batch)` and
/// `stalls` parks the NICs in a correlated Markov process of
/// `(mean_up_ns, mean_down_ns)` — the live fabric's two fault knobs (it
/// has no lossy wire; loss plans only reach the fault engine).
fn deterministic_job(
    n: u32,
    seed: u64,
    credits: Option<(u32, u32, u32)>,
    stalls: Option<(f64, f64)>,
) -> (Cluster, Vec<MpiProcess>) {
    let mut cluster = Cluster::new(
        n as usize,
        NetworkModel::paper_default(),
        NicConfig::default(),
        seed,
    )
    .deterministic();
    if let Some((hdr, data, update_batch)) = credits {
        cluster = cluster.with_credits(hdr, data, update_batch);
    }
    if let Some((up, down)) = stalls {
        cluster.set_markov_stalls(up, down, seed ^ 0x3A11);
    }
    let mut tap = NullTap;
    let ranks: Vec<MpiProcess> = (0..n)
        .map(|i| {
            let uct = Worker::new(
                NodeId(i),
                LlpCosts::default().deterministic(),
                seed ^ (0xC0_11EC + i as u64),
            );
            let mut p = MpiProcess::new(
                UcpWorker::new(uct, UcpCosts::default().unmoderated()),
                MpiCosts::default(),
            );
            p.init(&mut cluster, &mut tap);
            p
        })
        .collect();
    (cluster, ranks)
}

/// Run `op` at each rank count, every count on its own freshly seeded
/// cluster, fanned out across a [`WorkerPool`]. The min-clock driver
/// inside one job stays sequential (its ranks share hardware); the jobs
/// themselves are independent, which is where the parallelism is. Seeds
/// derive from `(seed, rank count)` alone, so the result is identical to
/// running the jobs in a serial loop.
pub fn collective_scaling(
    rank_counts: &[u32],
    op: Collective,
    seed: u64,
) -> Vec<(u32, CollectiveReport)> {
    collective_scaling_with(rank_counts, op, seed, None, None)
}

/// [`collective_scaling`] under an optional posted-credit override and/or
/// a correlated NIC-stall process (the `--faults` plan's live-fabric
/// knobs). Each report carries the cluster's [`RecoveryCounters`], so a
/// starved configuration shows credit stalls alongside its completion
/// time.
pub fn collective_scaling_with(
    rank_counts: &[u32],
    op: Collective,
    seed: u64,
    credits: Option<(u32, u32, u32)>,
    stalls: Option<(f64, f64)>,
) -> Vec<(u32, CollectiveReport)> {
    WorkerPool::new().map(rank_counts.to_vec(), |_, n| {
        let (mut cluster, mut ranks) = deterministic_job(n, seed, credits, stalls);
        let mut tap = NullTap;
        let report = run_collective(&mut cluster, &mut ranks, op, &mut tap);
        (n, report)
    })
}

/// Convenience: barrier over the ranks.
pub fn barrier(
    cluster: &mut Cluster,
    ranks: &mut [MpiProcess],
    tap: &mut dyn LinkTap,
) -> CollectiveReport {
    run_collective(cluster, ranks, Collective::Barrier, tap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::MpiCosts;
    use bband_fabric::NetworkModel;
    use bband_hlp::{UcpCosts, UcpWorker};
    use bband_llp::{LlpCosts, Worker};
    use bband_nic::NicConfig;
    use bband_pcie::NullTap;

    fn setup(n: usize) -> (Cluster, Vec<MpiProcess>) {
        let mut cluster =
            Cluster::new(n, NetworkModel::paper_default(), NicConfig::default(), 9).deterministic();
        let mut tap = NullTap;
        let ranks: Vec<MpiProcess> = (0..n)
            .map(|i| {
                let uct = Worker::new(
                    NodeId(i as u32),
                    LlpCosts::default().deterministic(),
                    100 + i as u64,
                );
                let mut p = MpiProcess::new(
                    UcpWorker::new(uct, UcpCosts::default().unmoderated()),
                    MpiCosts::default(),
                );
                p.init(&mut cluster, &mut tap);
                p
            })
            .collect();
        (cluster, ranks)
    }

    #[test]
    fn barrier_completes_on_two_ranks() {
        let (mut cl, mut ranks) = setup(2);
        let mut tap = NullTap;
        let rep = barrier(&mut cl, &mut ranks, &mut tap);
        assert_eq!(rep.rounds, 1);
        // One round ≈ one end-to-end latency plus progress overheads.
        let us = rep.completion.as_ns_f64() / 1_000.0;
        assert!((1.0..6.0).contains(&us), "2-rank barrier took {us} µs");
    }

    #[test]
    fn barrier_scales_logarithmically() {
        let mut tap = NullTap;
        let (mut c2, mut r2) = setup(2);
        let t2 = barrier(&mut c2, &mut r2, &mut tap).completion.as_ns_f64();
        let (mut c8, mut r8) = setup(8);
        let t8 = barrier(&mut c8, &mut r8, &mut tap).completion.as_ns_f64();
        // 8 ranks = 3 rounds vs 1 round: between 2x and 5x, not 4x+ linear.
        let ratio = t8 / t2;
        assert!(
            (1.8..5.5).contains(&ratio),
            "barrier scaling ratio {ratio} (t2 {t2}, t8 {t8})"
        );
    }

    #[test]
    fn bcast_reaches_every_rank() {
        let (mut cl, mut ranks) = setup(4);
        let mut tap = NullTap;
        let rep = run_collective(
            &mut cl,
            &mut ranks,
            Collective::Bcast { root: 1, bytes: 8 },
            &mut tap,
        );
        assert_eq!(rep.rounds, 2);
        // Completion means every non-root received its copy; the driver
        // would have diverged otherwise.
    }

    #[test]
    fn allreduce_completes_and_costs_more_than_barrier() {
        let mut tap = NullTap;
        let (mut c4, mut r4) = setup(4);
        let tb = barrier(&mut c4, &mut r4, &mut tap).completion;
        let (mut c4b, mut r4b) = setup(4);
        let ta = run_collective(
            &mut c4b,
            &mut r4b,
            Collective::Allreduce { bytes: 256 },
            &mut tap,
        )
        .completion;
        // Same round count; allreduce moves real payloads both ways, so it
        // cannot be cheaper than the barrier.
        assert!(ta >= tb, "allreduce {ta} vs barrier {tb}");
    }

    #[test]
    fn back_to_back_barriers_do_not_collide() {
        let (mut cl, mut ranks) = setup(4);
        let mut tap = NullTap;
        let first = barrier(&mut cl, &mut ranks, &mut tap).completion;
        let second = barrier(&mut cl, &mut ranks, &mut tap).completion;
        assert!(second > first, "second barrier runs after the first");
    }

    #[test]
    fn scaling_sweep_matches_serial_runs() {
        // The pooled sweep must reproduce job-by-job serial execution.
        let counts = [2u32, 4, 8];
        let pooled = collective_scaling(&counts, Collective::Barrier, 9);
        for &(n, ref rep) in &pooled {
            let (mut cl, mut ranks) = super::deterministic_job(n, 9, None, None);
            let mut tap = NullTap;
            let serial = run_collective(&mut cl, &mut ranks, Collective::Barrier, &mut tap);
            assert_eq!(rep.completion, serial.completion, "{n} ranks");
            assert_eq!(rep.rounds, serial.rounds);
        }
        // Logarithmic rounds, monotone completion.
        assert_eq!(
            pooled.iter().map(|(_, r)| r.rounds).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert!(pooled[2].1.completion > pooled[0].1.completion);
    }

    #[test]
    fn starved_credits_engage_recovery_and_slow_the_collective() {
        // Inline payloads (<= 256 B) ride BlueFlame as ~5 PIO chunks per
        // post, so a one-header-credit pool has to park some of them at
        // the RC. (Larger payloads fall back to a single-chunk descriptor
        // the NIC DMA-reads, which a serial rank never backs up.)
        let counts = [8u32];
        let op = Collective::Allreduce { bytes: 240 };
        let clean = collective_scaling(&counts, op, 9);
        assert!(clean[0].1.counters.is_clean(), "default pools never stall");
        let starved = collective_scaling_with(&counts, op, 9, Some((1, 8, 1)), None);
        assert!(
            starved[0].1.counters.credit_stalls > 0,
            "a one-header-credit pool must park MMIO writes: {:?}",
            starved[0].1.counters
        );
        assert!(
            starved[0].1.completion >= clean[0].1.completion,
            "parked doorbells cannot make the collective faster"
        );
    }

    #[test]
    fn markov_stalls_surface_in_the_report() {
        // Mostly-down NICs: every rank's sends cross stall windows.
        let rep = collective_scaling_with(
            &[8u32],
            Collective::Allreduce { bytes: 4096 },
            9,
            None,
            Some((500.0, 2_000.0)),
        );
        let k = &rep[0].1.counters;
        assert!(k.nic_stalls > 0, "stall windows must engage: {k:?}");
        assert!(k.recovery_time > bband_sim::SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_is_rejected() {
        let (mut cl, mut ranks) = setup(3);
        let mut tap = NullTap;
        let _ = barrier(&mut cl, &mut ranks, &mut tap);
    }
}
