//! Offline stand-in for `serde_json`, backed by the `serde` shim's value
//! model (`serde::json`). Provides the handful of entry points the
//! workspace uses: `to_string`, `to_string_pretty`, `from_str`, `Value`.

pub use serde::json::{Error, Value};

/// Serialize to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().render_compact())
}

/// Serialize to pretty (2-space indented) JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().render_pretty())
}

/// Parse JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = serde::json::parse(s)?;
    T::from_value(&v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip() {
        let src = r#"{"a": [1, -2, 3.5, "x\n", true, null], "b": {"c": 7}}"#;
        let v: Value = from_str(src).unwrap();
        assert_eq!(v["a"][0], 1);
        assert_eq!(v["a"][1], -2);
        assert_eq!(v["a"][2], 3.5);
        assert_eq!(v["a"][3], "x\n");
        assert_eq!(v["b"]["c"], 7);
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
        let back_pretty: Value = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(back_pretty, v);
    }

    #[test]
    fn vec_of_pairs_roundtrip() {
        let xs: Vec<(f64, f64)> = vec![(0.5, 1.25), (2.0, 3.0)];
        let json = to_string(&xs).unwrap();
        let back: Vec<(f64, f64)> = from_str(&json).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn option_roundtrip() {
        let x: Option<u64> = None;
        assert_eq!(to_string(&x).unwrap(), "null");
        let y: Option<u64> = from_str("null").unwrap();
        assert_eq!(y, None);
        let z: Option<u64> = from_str("42").unwrap();
        assert_eq!(z, Some(42));
    }
}
