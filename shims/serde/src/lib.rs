//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this workspace ships a
//! minimal serde replacement sufficient for its own use: serialization is a
//! single-method trait producing a [`json::Value`] tree, deserialization the
//! inverse. The derive macros (re-exported from the sibling `serde_derive`
//! shim) target these traits, and the `serde_json` shim renders/parses the
//! value tree. The public names match real serde closely enough that the
//! workspace code is source-compatible — swapping the real crates back in
//! is a Cargo.toml change, not a code change.

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

use json::{Error, Value};

/// A type that can render itself as a JSON value tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// A type that can reconstruct itself from a JSON value tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ----------------------------------------------------------- impl: numbers

macro_rules! ser_de_unsigned {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_u64()
                    .and_then(|x| <$t>::try_from(x).ok())
                    .ok_or_else(|| Error::msg(concat!("expected ", stringify!($t))))
            }
        }
    )+};
}
ser_de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_de_signed {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as i64;
                if x >= 0 { Value::UInt(x as u64) } else { Value::Int(x) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_i64()
                    .and_then(|x| <$t>::try_from(x).ok())
                    .ok_or_else(|| Error::msg(concat!("expected ", stringify!($t))))
            }
        }
    )+};
}
ser_de_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::msg("expected f64"))
    }
}
impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|x| x as f32)
            .ok_or_else(|| Error::msg("expected f32"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::msg("expected bool"))
    }
}

// ----------------------------------------------------------- impl: strings

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::msg("expected string"))
    }
}
impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

// -------------------------------------------------------- impl: containers

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}
impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (*self).to_value()
    }
}
impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![self.0.to_value(), self.1.to_value()])
    }
}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let a = v.as_array().ok_or_else(|| Error::msg("expected pair"))?;
        if a.len() != 2 {
            return Err(Error::msg("expected 2-element array"));
        }
        Ok((A::from_value(&a[0])?, B::from_value(&a[1])?))
    }
}
impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}
impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let a = v.as_array().ok_or_else(|| Error::msg("expected triple"))?;
        if a.len() != 3 {
            return Err(Error::msg("expected 3-element array"));
        }
        Ok((
            A::from_value(&a[0])?,
            B::from_value(&a[1])?,
            C::from_value(&a[2])?,
        ))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
