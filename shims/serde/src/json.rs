//! The JSON value model, printer and parser backing the serde shim.
//!
//! Objects preserve insertion order (a `Vec` of pairs, not a map) so that
//! serialized artifacts are byte-stable across runs — the repro harness
//! diffs parallel vs serial JSON output byte-for-byte.

use std::fmt;

/// A JSON document.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Bool(bool),
    /// Non-negative integers (the common case: picosecond counts).
    UInt(u64),
    /// Negative integers.
    Int(i64),
    Float(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    pub fn msg(m: impl Into<String>) -> Error {
        Error { message: m.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(x) => Some(*x),
            Value::Int(x) if *x >= 0 => Some(*x as u64),
            Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::UInt(x) => i64::try_from(*x).ok(),
            Value::Int(x) => Some(*x),
            Value::Float(f) if f.fract() == 0.0 => Some(*f as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::UInt(x) => Some(*x as f64),
            Value::Int(x) => Some(*x as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Look up `name` in an object value and deserialize it; a missing member
/// deserializes as `Null` (so `Option` fields default to `None`).
pub fn field<T: crate::Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v.get(name) {
        Some(x) => T::from_value(x),
        None => T::from_value(&Value::Null),
    }
}

/// Decompose an externally-tagged enum value: a one-member object.
pub fn variant(v: &Value) -> Option<(&str, &Value)> {
    let o = v.as_object()?;
    if o.len() == 1 {
        Some((o[0].0.as_str(), &o[0].1))
    } else {
        None
    }
}

// -------------------------------------------------------------- equality

fn num_eq(a: &Value, b: &Value) -> Option<bool> {
    let an = matches!(a, Value::UInt(_) | Value::Int(_) | Value::Float(_));
    let bn = matches!(b, Value::UInt(_) | Value::Int(_) | Value::Float(_));
    if !an || !bn {
        return None;
    }
    if let (Some(x), Some(y)) = (a.as_i64(), b.as_i64()) {
        return Some(x == y);
    }
    Some(a.as_f64() == b.as_f64())
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        if let Some(eq) = num_eq(self, other) {
            return eq;
        }
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Arr(a), Value::Arr(b)) => a == b,
            (Value::Obj(a), Value::Obj(b)) => a == b,
            _ => false,
        }
    }
}

macro_rules! eq_int {
    ($($t:ty),+) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_i64() == i64::try_from(*other).ok()
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )+};
}
eq_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}
impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}
impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}
impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}
impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

// -------------------------------------------------------------- indexing

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

// -------------------------------------------------------------- printing

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number_to_string(f: f64) -> String {
    if !f.is_finite() {
        // serde_json renders non-finite floats as null.
        return "null".to_string();
    }
    // Rust's shortest-roundtrip formatting; "1" (not "1.0") is valid JSON.
    format!("{f}")
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(x) => out.push_str(&x.to_string()),
        Value::Int(x) => out.push_str(&x.to_string()),
        Value::Float(f) => out.push_str(&number_to_string(*f)),
        Value::Str(s) => escape_into(out, s),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(w) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * (level + 1)));
                }
                write_value(out, item, indent, level + 1);
            }
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * level));
            }
            out.push(']');
        }
        Value::Obj(members) => {
            if members.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(w) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * (level + 1)));
                }
                escape_into(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * level));
            }
            out.push('}');
        }
    }
}

impl Value {
    /// Compact rendering.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        out
    }

    /// Pretty rendering, 2-space indent (matching serde_json's default).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, Some(2), 0);
        out
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_compact())
    }
}

// --------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_lit("null") => Ok(Value::Null),
            Some(b't') if self.eat_lit("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_lit("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(Error::msg("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut members = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    members.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(members));
                        }
                        _ => return Err(Error::msg("expected ',' or '}'")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::msg(format!("unexpected byte {other:?}"))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::msg("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::msg(format!("bad float literal {text}")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<i64>()
                .map(|x| Value::Int(-x))
                .map_err(|_| Error::msg(format!("bad int literal {text}")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::msg(format!("bad int literal {text}")))
        }
    }
}

/// Parse a JSON document.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg("trailing characters after JSON document"));
    }
    Ok(v)
}
