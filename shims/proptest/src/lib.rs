//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this shim implements
//! the slice of proptest's API the workspace uses: the `proptest!` macro
//! (with optional `#![proptest_config(...)]` header), range and `any`
//! strategies, tuple strategies, `collection::vec`, and the `prop_assert*`
//! macros. Cases are generated from a deterministic per-test RNG (seeded
//! from the test's module path and name), so failures are reproducible;
//! there is no shrinking — the failing input is printed instead.

use std::marker::PhantomData;
use std::ops::Range;

/// Number of cases per property, unless overridden by the config header or
/// the `PROPTEST_CASES` environment variable.
pub const DEFAULT_CASES: u32 = 24;

/// Subset of proptest's run configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_CASES);
        ProptestConfig { cases }
    }
}

/// Deterministic per-test RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift; bias is irrelevant for test-case generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A source of generated values.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.next_below(span) as i128) as $t
            }
        }
    )+};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// `any::<T>()` — the full-range strategy for a type.
pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Types `any::<T>()` can generate.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// A fixed value (proptest's `Just`).
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.next_below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Any, Arbitrary, Just, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// The property-test harness macro.
///
/// Matches proptest's surface syntax: an optional
/// `#![proptest_config(expr)]` header followed by `#[test]` functions whose
/// arguments are drawn from strategies (`arg in strategy`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = <$crate::ProptestConfig as ::core::default::Default>::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case as u64,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Assert inside a property; prints the condition on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("shim", 0);
        for _ in 0..1000 {
            let x = Strategy::generate(&(5u64..10), &mut rng);
            assert!((5..10).contains(&x));
            let f = Strategy::generate(&(1.0f64..2.0), &mut rng);
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::for_case("shim-vec", 3);
        for _ in 0..100 {
            let v = Strategy::generate(&collection::vec(0u8..4, 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn macro_and_tuples_work((flag, x) in (any::<bool>(), 0u64..4), v in collection::vec(0u64..10, 1..4)) {
            let _ = flag;
            prop_assert!(x < 4);
            prop_assert!(!v.is_empty() && v.len() < 4);
        }
    }
}
