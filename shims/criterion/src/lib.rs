//! Offline stand-in for `criterion`.
//!
//! The build environment has no crates.io access, so this shim provides the
//! subset of criterion's API the workspace benches use: `Criterion`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Timing is a simple calibrated wall-clock loop
//! (warmup, then enough iterations to fill a measurement window) with
//! median-of-samples reporting — no statistical regression analysis, no
//! HTML reports.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(300);
const MEASURE: Duration = Duration::from_millis(1500);
const SAMPLES: usize = 20;

/// Benchmark harness handle passed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run `f` as a named benchmark and print a one-line summary.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };

        // Warmup: find an iteration count that takes a meaningful slice of
        // the warmup window, doubling until the routine is no longer noise.
        let warmup_start = Instant::now();
        while warmup_start.elapsed() < WARMUP {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            if b.elapsed < Duration::from_micros(100) && b.iters < u64::MAX / 2 {
                b.iters *= 2;
            }
        }

        // Scale iteration count so one sample ~ MEASURE / SAMPLES.
        let per_iter = if b.elapsed.is_zero() {
            Duration::from_nanos(1)
        } else {
            b.elapsed / b.iters as u32
        };
        let target = MEASURE / SAMPLES as u32;
        let iters =
            (target.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, u64::MAX as u128) as u64;

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            b.iters = iters;
            b.elapsed = Duration::ZERO;
            f(&mut b);
            per_iter_ns.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
        }
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter_ns[per_iter_ns.len() / 2];
        let lo = per_iter_ns[0];
        let hi = per_iter_ns[per_iter_ns.len() - 1];
        println!(
            "{name:<40} time: [{} {} {}]",
            format_ns(lo),
            format_ns(median),
            format_ns(hi)
        );
        self
    }
}

/// Passed to the benchmark closure; `iter` times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the harness-chosen iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declare a benchmark group: `criterion_group!(benches, fn_a, fn_b);`
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = <$crate::Criterion as ::core::default::Default>::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the bench entry point: `criterion_main!(benches);`
///
/// Accepts and ignores the `--bench` argument cargo passes so
/// `cargo bench` works unchanged.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_a_routine() {
        let mut c = Criterion::default();
        // Keep this fast: a trivial routine still exercises calibration.
        c.bench_function("shim_smoke", |b| b.iter(|| black_box(1u64) + 1));
    }
}
