//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so the real serde
//! stack is replaced by a small shim (see `shims/serde`). This proc-macro
//! crate implements `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! against that shim's single-method traits: serialization goes through a
//! `serde::json::Value` tree rather than serde's visitor machinery.
//!
//! Supported shapes (everything the workspace actually derives):
//! named structs, tuple structs, unit structs, and enums with unit, tuple
//! and struct variants; plus the `#[serde(skip)]` field attribute (skipped
//! on serialize, `Default::default()` on deserialize). Generics are not
//! supported — no derived type in the workspace is generic.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Shape {
    Named(Vec<Field>),
    Tuple(Vec<Field>),
    Unit,
    Enum(Vec<Variant>),
}

struct Parsed {
    name: String,
    shape: Shape,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let p = parse_item(input);
    gen_serialize(&p)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let p = parse_item(input);
    gen_deserialize(&p)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

/// Consume leading attributes; return true if any is `#[serde(skip)]`.
fn eat_attrs(toks: &[TokenTree], i: &mut usize) -> bool {
    let mut skip = false;
    while let Some(TokenTree::Punct(p)) = toks.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        *i += 1;
        if let Some(TokenTree::Punct(bang)) = toks.get(*i) {
            if bang.as_char() == '!' {
                *i += 1;
            }
        }
        if let Some(TokenTree::Group(g)) = toks.get(*i) {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if let Some(TokenTree::Ident(id)) = inner.first() {
                if id.to_string() == "serde" {
                    if let Some(TokenTree::Group(args)) = inner.get(1) {
                        if args.stream().to_string().contains("skip") {
                            skip = true;
                        }
                    }
                }
            }
            *i += 1;
        }
    }
    skip
}

fn eat_vis(toks: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = toks.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

fn ident_at(toks: &[TokenTree], i: usize) -> String {
    match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected identifier, found {other:?}"),
    }
}

/// Skip tokens of a type expression until a top-level comma (angle-bracket
/// aware — commas inside `<...>` belong to the type).
fn eat_type(toks: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while let Some(t) = toks.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let skip = eat_attrs(&toks, &mut i);
        eat_vis(&toks, &mut i);
        let name = ident_at(&toks, i);
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                panic!("serde shim derive: expected ':' after field `{name}`, found {other:?}")
            }
        }
        eat_type(&toks, &mut i);
        fields.push(Field { name, skip });
    }
    fields
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let skip = eat_attrs(&toks, &mut i);
        eat_vis(&toks, &mut i);
        eat_type(&toks, &mut i);
        fields.push(Field {
            name: fields.len().to_string(),
            skip,
        });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        eat_attrs(&toks, &mut i);
        let name = ident_at(&toks, i);
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                VariantKind::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = parse_tuple_fields(g.stream()).len();
                i += 1;
                VariantKind::Tuple(n)
            }
            _ => VariantKind::Unit,
        };
        if let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Parsed {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    eat_attrs(&toks, &mut i);
    eat_vis(&toks, &mut i);
    let kw = ident_at(&toks, i);
    i += 1;
    let name = ident_at(&toks, i);
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic type `{name}` is not supported");
        }
    }
    let shape = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(parse_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            other => panic!("serde shim derive: unexpected struct body {other:?}"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde shim derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde shim derive: expected struct or enum, found `{other}`"),
    };
    Parsed { name, shape }
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(p: &Parsed) -> String {
    let name = &p.name;
    let body = match &p.shape {
        Shape::Named(fields) => {
            let mut s = String::from(
                "let mut __o: ::std::vec::Vec<(::std::string::String, ::serde::json::Value)> = ::std::vec::Vec::new();\n",
            );
            for f in fields.iter().filter(|f| !f.skip) {
                s.push_str(&format!(
                    "__o.push((::std::string::String::from(\"{n}\"), ::serde::Serialize::to_value(&self.{n})));\n",
                    n = f.name
                ));
            }
            s.push_str("::serde::json::Value::Obj(__o)");
            s
        }
        Shape::Tuple(fields) if fields.len() == 1 => {
            "::serde::Serialize::to_value(&self.0)".to_string()
        }
        Shape::Tuple(fields) => {
            let items: Vec<String> = (0..fields.len())
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "::serde::json::Value::Arr(::std::vec::Vec::from([{}]))",
                items.join(", ")
            )
        }
        Shape::Unit => "::serde::json::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut s = String::from("match self {\n");
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => s.push_str(&format!(
                        "{name}::{vn} => ::serde::json::Value::Str(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "::serde::json::Value::Arr(::std::vec::Vec::from([{}]))",
                                items.join(", ")
                            )
                        };
                        s.push_str(&format!(
                            "{name}::{vn}({binds}) => ::serde::json::Value::Obj(::std::vec::Vec::from([(::std::string::String::from(\"{vn}\"), {inner})])),\n",
                            binds = binds.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let pushes: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{n}\"), ::serde::Serialize::to_value({n}))",
                                    n = f.name
                                )
                            })
                            .collect();
                        s.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::json::Value::Obj(::std::vec::Vec::from([(::std::string::String::from(\"{vn}\"), ::serde::json::Value::Obj(::std::vec::Vec::from([{fields}])))])),\n",
                            binds = binds.join(", "),
                            fields = pushes.join(", ")
                        ));
                    }
                }
            }
            s.push('}');
            s
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_mut, clippy::all)]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::json::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize(p: &Parsed) -> String {
    let name = &p.name;
    let body = match &p.shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    if f.skip {
                        format!("{}: ::core::default::Default::default()", f.name)
                    } else {
                        format!("{n}: ::serde::json::field(__value, \"{n}\")?", n = f.name)
                    }
                })
                .collect();
            format!(
                "::core::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Tuple(fields) if fields.len() == 1 => {
            format!(
                "::core::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))"
            )
        }
        Shape::Tuple(fields) => {
            let n = fields.len();
            let items: Vec<String> = (0..n)
                .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                .collect();
            format!(
                "let __a = __value.as_array().ok_or_else(|| ::serde::json::Error::msg(\"expected array for {name}\"))?;\n\
                 if __a.len() != {n} {{ return ::core::result::Result::Err(::serde::json::Error::msg(\"wrong arity for {name}\")); }}\n\
                 ::core::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::Unit => format!("::core::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            for v in variants {
                if matches!(v.kind, VariantKind::Unit) {
                    unit_arms.push_str(&format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),\n",
                        vn = v.name
                    ));
                }
            }
            let mut payload_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {}
                    VariantKind::Tuple(1) => payload_arms.push_str(&format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                            .collect();
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                                 let __a = __inner.as_array().ok_or_else(|| ::serde::json::Error::msg(\"expected array variant\"))?;\n\
                                 if __a.len() != {n} {{ return ::core::result::Result::Err(::serde::json::Error::msg(\"wrong variant arity\")); }}\n\
                                 ::core::result::Result::Ok({name}::{vn}({items}))\n\
                             }}\n",
                            items = items.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                if f.skip {
                                    format!("{}: ::core::default::Default::default()", f.name)
                                } else {
                                    format!(
                                        "{n}: ::serde::json::field(__inner, \"{n}\")?",
                                        n = f.name
                                    )
                                }
                            })
                            .collect();
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => ::core::result::Result::Ok({name}::{vn} {{ {} }}),\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match __value {{\n\
                     ::serde::json::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\
                         __other => ::core::result::Result::Err(::serde::json::Error::msg(\"unknown unit variant\")),\n\
                     }},\n\
                     __v => {{\n\
                         let (__k, __inner) = ::serde::json::variant(__v).ok_or_else(|| ::serde::json::Error::msg(\"expected enum object for {name}\"))?;\n\
                         match __k {{\n\
                             {payload_arms}\
                             _ => ::core::result::Result::Err(::serde::json::Error::msg(\"unknown variant\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_variables, unreachable_patterns, unreachable_code, clippy::all)]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__value: &::serde::json::Value) -> ::core::result::Result<Self, ::serde::json::Error> {{\n{body}\n}}\n\
         }}"
    )
}
