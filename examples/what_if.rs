//! §7's what-if analysis, extended: the four Figure 17 panels, the
//! headline claims, a simulation-backed linearity check, and a custom
//! "your optimization here" scenario combining several reductions.
//!
//! ```sh
//! cargo run --release --example what_if
//! ```

use breaking_band::llp::Phase;
use breaking_band::models::whatif::Component;
use breaking_band::models::{Calibration, EndToEndLatencyModel, WhatIf};
use breaking_band::report::render_curves;

fn main() {
    let w = WhatIf::new(Calibration::default());

    // The paper's Figure 17, all four panels.
    let titles = [
        "Figure 17a: injection speedup vs CPU-component reduction",
        "Figure 17b: latency speedup vs CPU-component reduction",
        "Figure 17c: latency speedup vs I/O-component reduction",
        "Figure 17d: latency speedup vs network-component reduction",
    ];
    for (title, panel) in titles.iter().zip(w.figure17()) {
        println!("{}", render_curves(title, &panel));
    }

    // §7's claims, checked against the model.
    println!("Section 7 claims:");
    for c in w.claims() {
        println!(
            "  [{}] {} -> {:.2}% (paper: {:.2}%)",
            if c.holds { "ok" } else { "FAIL" },
            c.name,
            c.speedup_pct,
            c.paper_pct
        );
        assert!(c.holds);
    }

    // The paper: a distributed-system simulator gives "exactly the same
    // linear speedups". Cross-check one line against our discrete-event
    // substrate: scale the PIO copy and actually re-run put_bw.
    println!("\nSimulation-backed check (PIO copy, Eq. 1 metric):");
    for reduction in [0.3, 0.6, 0.9] {
        let predicted = 94.25 * reduction / 295.73 * 100.0;
        let simulated = w.simulate_injection_speedup(Phase::PioCopy, reduction, 4_000);
        println!(
            "  reduce PIO {:>3.0}% -> model {predicted:5.2}%  simulated {simulated:5.2}%",
            reduction * 100.0
        );
        assert!((predicted - simulated).abs() < 1.0);
    }

    // Hardware what-ifs cross-checked against the substrate: scale the
    // switch / RC-to-MEM / wire models inside the simulated cluster and
    // re-run the am_lat ping-pong.
    println!("\nSimulation-backed hardware check (UCT latency metric):");
    let uct_baseline = 1135.8 + 49.69 / 2.0;
    for (comp, share) in [
        (Component::Switch, 108.0),
        (Component::RcToMem, 240.96),
        (Component::Wire, 274.81),
    ] {
        let predicted = share * 0.5 / uct_baseline * 100.0;
        let simulated = w.simulate_latency_speedup(comp, 0.5, 60);
        println!(
            "  halve {:<10} -> model {predicted:5.2}%  simulated {simulated:5.2}%",
            format!("{comp:?}")
        );
        assert!((predicted - simulated).abs() < 0.5);
    }

    // A composite scenario: integrated NIC (I/O -80%) + fast device writes
    // (PIO -84%) + GenZ-class switch (-72%) applied together.
    println!("\nComposite scenario (integrated NIC + fast PIO + GenZ switch):");
    let c = Calibration::default();
    let baseline = EndToEndLatencyModel::from_calibration(&c)
        .total()
        .as_ns_f64();
    let saved = Component::IntegratedNic
        .latency_time(&c)
        .unwrap()
        .as_ns_f64()
        * 0.80
        + Component::Pio.latency_time(&c).unwrap().as_ns_f64() * 0.84
        + Component::Switch.latency_time(&c).unwrap().as_ns_f64() * 0.72;
    println!(
        "  end-to-end latency {baseline:.2} ns -> {:.2} ns ({:.1}% faster)",
        baseline - saved,
        saved / baseline * 100.0
    );
}
