//! Parameter sweeps over the simulated stack — the design-space questions
//! the paper's introduction motivates (fine-grained communication at the
//! limits of strong scaling).
//!
//! Three sweeps:
//! 1. **payload size** — where does the latency stop being CPU/I-O bound
//!    and become network (serialization) bound?
//! 2. **completion moderation** — how much injection overhead do
//!    unsignaled completions (c = 1…256) actually save?
//! 3. **transport path** — PIO+inline vs doorbell+DMA for small messages
//!    (the §2 comparison);
//! 4. **protocol crossover** — eager vs rendezvous across payload sizes
//!    (the §5 "message fragmentation / protocol" layer at work).
//!
//! ```sh
//! cargo run --release --example fleet_sweep
//! ```

use breaking_band::fabric::NodeId;
use breaking_band::microbench::{eager_rndv_sweep, osu_message_rate, OsuMrConfig, StackConfig};
use breaking_band::nic::{CqeKind, Opcode};
use breaking_band::pcie::NullTap;
use breaking_band::sim::SimTime;

fn main() {
    payload_sweep();
    moderation_sweep();
    path_comparison();
    protocol_crossover();
    collective_scaling();
}

/// Dissemination-barrier latency vs rank count, on the paper's single
/// switch and on a two-level fat tree.
fn collective_scaling() {
    use breaking_band::fabric::NetworkModel;
    use breaking_band::hlp::{UcpCosts, UcpWorker};
    use breaking_band::llp::{LlpCosts, Worker};
    use breaking_band::mpi::{barrier, MpiCosts, MpiProcess};
    use breaking_band::nic::{Cluster, NicConfig};

    println!("\nBarrier scaling (dissemination, deterministic):");
    println!(
        "  {:>6}  {:>14}  {:>14}",
        "ranks", "single switch", "fat tree (pod=2)"
    );
    for n in [2usize, 4, 8, 16] {
        let run = |network: NetworkModel| {
            let mut cluster = Cluster::new(n, network, NicConfig::default(), 17).deterministic();
            let mut tap = NullTap;
            let mut ranks: Vec<MpiProcess> = (0..n)
                .map(|i| {
                    let uct = Worker::new(
                        NodeId(i as u32),
                        LlpCosts::default().deterministic(),
                        300 + i as u64,
                    );
                    let mut p = MpiProcess::new(
                        UcpWorker::new(uct, UcpCosts::default().unmoderated()),
                        MpiCosts::default(),
                    );
                    p.init(&mut cluster, &mut tap);
                    p
                })
                .collect();
            barrier(&mut cluster, &mut ranks, &mut tap)
                .completion
                .as_ns_f64()
        };
        let single = run(NetworkModel::paper_default());
        let fat = run(NetworkModel::fat_tree(2));
        println!("  {n:>6}  {single:>12.1}ns  {fat:>12.1}ns");
    }
}

/// Eager (two bounce copies) vs rendezvous (handshake + zero-copy RDMA):
/// where does UCX's protocol switch pay off?
fn protocol_crossover() {
    println!("\nEager vs rendezvous (UCP-level one-way latency, deterministic):");
    println!("  {:>10}  {:>12}  {:>12}  winner", "bytes", "eager", "rndv");
    let rows = eager_rndv_sweep(
        &StackConfig::validation(),
        &[4 * 1024, 16 * 1024, 64 * 1024, 256 * 1024],
    );
    for (p, e, r) in rows {
        println!(
            "  {p:>10}  {e:>10.1}ns  {r:>10.1}ns  {}",
            if e <= r { "eager" } else { "rendezvous" }
        );
    }
}

/// One-way UCT-level latency as a function of payload size (inline up to
/// the NIC's limit, so PIO chunks grow with the payload).
fn payload_sweep() {
    println!("Payload-size sweep (UCT send-receive latency, deterministic):");
    println!("  {:>8}  {:>12}  {:>10}", "bytes", "latency", "network %");
    for payload in [8u32, 16, 32, 64, 128, 256] {
        let cfg = StackConfig::validation();
        let mut cluster = cfg.build_cluster();
        let mut tap = NullTap;
        let mut w0 = cfg.build_worker(0);
        let mut w1 = cfg.build_worker(1);
        for _ in 0..8 {
            w1.post_recv(&mut cluster, 4096, &mut tap);
        }
        // Average a few one-way sends, measured on the wire-side clock.
        let iters = 20;
        let t0 = SimTime::ZERO;
        let mut last_visible = t0;
        for _ in 0..iters {
            w0.post(
                &mut cluster,
                Opcode::Send,
                NodeId(1),
                payload,
                true,
                &mut tap,
            )
            .unwrap();
            let rx = w1.wait(&mut cluster, CqeKind::RecvComplete, &mut tap);
            w1.post_recv(&mut cluster, 4096, &mut tap);
            w0.wait(&mut cluster, CqeKind::SendComplete, &mut tap);
            w0.clear_stashed();
            w1.clear_stashed();
            last_visible = rx.visible_at;
        }
        let _ = last_visible;
        // Latency of the last message: from its post start to visibility.
        // Simpler: one fresh deterministic measurement.
        let cfg = StackConfig::validation();
        let mut cluster = cfg.build_cluster();
        let mut w0 = cfg.build_worker(0);
        let mut w1 = cfg.build_worker(1);
        w1.post_recv(&mut cluster, 4096, &mut tap);
        let t_start = w0.now();
        w0.post(
            &mut cluster,
            Opcode::Send,
            NodeId(1),
            payload,
            true,
            &mut tap,
        )
        .unwrap();
        let rx = w1.wait(&mut cluster, CqeKind::RecvComplete, &mut tap);
        let oneway = rx.visible_at.since(t_start);
        let network =
            cluster.network_8b_mean().as_ns_f64() + (payload.saturating_sub(8)) as f64 * 0.08;
        println!(
            "  {:>8}  {:>12}  {:>9.1}%",
            payload,
            oneway,
            network / oneway.as_ns_f64() * 100.0
        );
    }
    println!();
}

/// Injection overhead vs the unsignaled-completion period.
fn moderation_sweep() {
    println!("Completion-moderation sweep (OSU message rate, deterministic):");
    println!("  {:>4}  {:>14}  {:>10}", "c", "inj overhead", "rate Mm/s");
    for c in [1u32, 2, 4, 16, 64, 256] {
        let report = osu_message_rate(&OsuMrConfig {
            stack: StackConfig::validation(),
            windows: 20,
            signal_period: c,
            ring_depth: 512,
            ..Default::default()
        });
        println!(
            "  {c:>4}  {:>14}  {:>10.3}",
            report.inj_overhead, report.rate_mmps
        );
    }
    println!();
}

/// PIO+inline vs doorbell+DMA completion time for an 8-byte message.
fn path_comparison() {
    println!("Transport-path comparison (8-byte message, deterministic):");
    for (label, pio, inline) in [
        ("PIO + inline (the paper's path)", true, true),
        ("doorbell + descriptor DMA + inline", false, true),
        ("doorbell + descriptor DMA + payload DMA", false, false),
    ] {
        let cfg = StackConfig::validation();
        let mut cluster = cfg.build_cluster();
        let mut tap = NullTap;
        use breaking_band::nic::{PostDescriptor, QpId, WrId};
        let t0 = SimTime::from_ns(10);
        let desc = PostDescriptor {
            wr_id: WrId(0),
            qp: QpId(0),
            dst_qp: QpId(0),
            opcode: Opcode::RdmaWrite,
            dst: NodeId(1),
            payload: 8,
            inline,
            pio,
            signaled: true,
            tag: 0,
        };
        cluster.post(t0, NodeId(0), desc, &mut tap);
        cluster.run_until_idle(&mut tap);
        let cqe = cluster.pop_cqe(NodeId(0), QpId(0)).expect("completion");
        println!(
            "  {:<42} completion after {}",
            label,
            cqe.visible_at.since(t0)
        );
    }
}
