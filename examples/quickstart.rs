//! Quickstart: build the calibrated models, print the headline numbers,
//! and validate them against the simulated system.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use breaking_band::microbench::{put_bw, PutBwConfig, StackConfig};
use breaking_band::models::{
    Calibration, EndToEndLatencyModel, InjectionModel, OverallInjectionModel,
};

fn main() {
    // The calibrated system: ThunderX2 + ConnectX-4 through one switch.
    let calib = Calibration::default();

    // Equation 1: LLP-level injection overhead.
    let inj = InjectionModel::from_calibration(&calib);
    println!("LLP injection overhead (Eq. 1): {}", inj.total());

    // Equation 2: overall injection overhead with the MPI stack on top.
    let overall = OverallInjectionModel::from_calibration(&calib);
    println!("Overall injection overhead (Eq. 2): {}", overall.total());

    // The end-to-end latency model and its component breakdown.
    let latency = EndToEndLatencyModel::from_calibration(&calib);
    println!("\nEnd-to-end latency: {}", latency.total());
    for (component, pct) in latency.breakdown().percentages() {
        println!("  {component:>14}: {pct:5.2}%");
    }

    // Observe the simulated system with the PCIe analyzer: run the
    // injection-rate benchmark and compare against the model.
    println!("\nRunning put_bw on the simulated system...");
    let report = put_bw(&PutBwConfig {
        stack: StackConfig::default(),
        messages: 10_000,
        ..Default::default()
    });
    let observed = report.observed.summary();
    let err = (inj.total().as_ns_f64() - observed.mean).abs() / observed.mean * 100.0;
    println!(
        "  observed {:.2} ns (median {:.2}, min {:.2}, sigma {:.2})",
        observed.mean, observed.median, observed.min, observed.std_dev
    );
    println!("  model-vs-observed error: {err:.2}% (the paper reports <5%)");
    assert!(err < 5.0);
}
