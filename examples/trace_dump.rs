//! The analyzer's view: run put_bw and am_lat with the PCIe analyzer
//! attached (as in the paper's Figure 3) and reproduce its trace-based
//! measurements — Figure 6's listing, the injection-overhead deltas, and
//! the PCIe / Network / RC-to-MEM extraction of §4.3.
//!
//! ```sh
//! cargo run --release --example trace_dump
//! ```

use breaking_band::microbench::{am_lat, put_bw, AmLatConfig, PutBwConfig, StackConfig};

fn main() {
    // --- Figure 6: the downstream trace of put_bw ----------------------
    let report = put_bw(&PutBwConfig {
        stack: StackConfig::default(),
        messages: 64,
        warmup: 0,
        ..Default::default()
    });
    println!("Figure 6: first downstream transactions of put_bw");
    for rec in report.analyzer.downstream_tlps(None).iter().take(10) {
        println!("{}", rec.render());
    }

    // --- Figure 7 statistics from the deltas ---------------------------
    let big = put_bw(&PutBwConfig {
        stack: StackConfig::default(),
        messages: 20_000,
        ..Default::default()
    });
    let s = big.observed.summary();
    println!(
        "\nObserved injection overhead: mean {:.2}  median {:.2}  min {:.2}  max {:.2}  sigma {:.2}",
        s.mean, s.median, s.min, s.max, s.std_dev
    );
    println!("(the paper's Figure 7: mean 282.33, median 266.30, min 201.30, max 34951.70)");

    // --- §4.3: PCIe, Network and RC-to-MEM from the am_lat trace -------
    let lat = am_lat(&AmLatConfig {
        stack: StackConfig::validation(),
        iterations: 500,
        warmup: 16,
        buffer_samples: false,
    });
    let pcie = lat.pcie.summary().mean;
    let network = lat.network.summary().mean;
    let pong_ping = lat.pong_ping.summary().mean;
    // Figure 9: delta = RC-to-MEM(8B) + 2 PCIe + LLP_prog + LLP_post
    // (+ the benchmark's measurement update in our loop placement).
    let rc_to_mem = pong_ping - 2.0 * 137.49 - 61.63 - 175.42 - 49.69;
    println!("\nTrace-derived measurements (deterministic am_lat):");
    println!("  PCIe (MWr->ACK roundtrip / 2):      {pcie:9.2} ns   (calibrated 137.49)");
    println!("  Network (ping->CQE / 2):            {network:9.2} ns   (calibrated 382.81)");
    println!("  RC-to-MEM(8B) (solved from Fig. 9): {rc_to_mem:9.2} ns   (calibrated 240.96)");
    println!(
        "  observed one-way latency:           {:9.2} ns   (model 1135.8 + half update)",
        lat.observed.summary().mean
    );

    // The analyzer is passive: rerunning without it gives identical times.
    println!(
        "\nTrace volume: {} records captured ({} downstream PIO writes)",
        lat.analyzer.len(),
        lat.analyzer
            .downstream_tlps(Some(breaking_band::pcie::TlpPurpose::PioChunk))
            .len()
    );
}
