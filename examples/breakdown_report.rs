//! The complete breakdown report: regenerates every breakdown figure of
//! the paper (4, 8, 10, 11, 12, 13, 14, 15, 16) plus Table 1 and the
//! model-vs-observed validation — the "complete picture" of §6.
//!
//! ```sh
//! cargo run --release --example breakdown_report
//! ```

use breaking_band::models::latency::Category;
use breaking_band::models::validate::{validate_all, ValidationScale};
use breaking_band::models::{
    hlp_breakdown, Calibration, EndToEndLatencyModel, InjectionModel, LlpLatencyModel,
    OverallInjectionModel,
};
use breaking_band::report::{render_bar, render_table1};

fn main() {
    let c = Calibration::default();

    println!("{}", render_table1(&c));

    println!("{}", render_bar(&InjectionModel::llp_post_breakdown(&c)));
    println!(
        "{}",
        render_bar(&InjectionModel::from_calibration(&c).breakdown())
    );
    println!(
        "{}",
        render_bar(&LlpLatencyModel::from_calibration(&c).breakdown())
    );
    println!("{}", render_bar(&hlp_breakdown::isend_split(&c)));
    println!("{}", render_bar(&hlp_breakdown::rx_wait_split(&c)));
    println!(
        "{}",
        render_bar(&OverallInjectionModel::from_calibration(&c).breakdown())
    );

    let e2e = EndToEndLatencyModel::from_calibration(&c);
    println!("{}", render_bar(&e2e.breakdown()));
    println!("{}", render_bar(&hlp_breakdown::initiation_split(&c)));
    println!("{}", render_bar(&hlp_breakdown::tx_progress_split(&c)));
    println!("{}", render_bar(&hlp_breakdown::rx_progress_split(&c)));
    println!("{}", render_bar(&e2e.category_breakdown()));
    for cat in [Category::Cpu, Category::Io, Category::Network] {
        println!("{}", render_bar(&e2e.category_sub_breakdown(cat)));
    }
    println!("{}", render_bar(&e2e.on_node_breakdown()));
    println!("{}", render_bar(&e2e.initiator_split()));
    println!("{}", render_bar(&e2e.target_split()));
    println!("{}", render_bar(&e2e.target_io_split()));

    // The four insights of §6, recomputed.
    println!("Insights (§6):");
    let overall = OverallInjectionModel::from_calibration(&c);
    println!(
        "  1. Post dominates injection: {:.1}% of {:.2} ns",
        overall.breakdown().pct("Post").unwrap(),
        overall.total().as_ns_f64()
    );
    let on_node = e2e.category_total(Category::Cpu) + e2e.category_total(Category::Io);
    println!(
        "  2. On-node share of latency: {:.1}% (network {:.1}%)",
        on_node.as_ns_f64() / e2e.total().as_ns_f64() * 100.0,
        e2e.category_total(Category::Network).as_ns_f64() / e2e.total().as_ns_f64() * 100.0
    );
    println!(
        "  3. Target-node share of on-node time: {:.1}%",
        e2e.on_node_breakdown().pct("Target").unwrap()
    );
    println!(
        "  4. RX progress / TX progress: {:.2}x",
        hlp_breakdown::rx_to_tx_progress_ratio(&c)
    );

    println!("\nValidating models against the simulated system (jittered)...");
    let report = validate_all(&c, ValidationScale::default(), true);
    for row in &report.rows {
        println!(
            "  {:<36} model {:>8.2}  observed {:>8.2}  err {:>5.2}% [{}]",
            row.name,
            row.modeled_ns,
            row.observed_ns,
            row.error_frac * 100.0,
            if row.passes() { "ok" } else { "FAIL" }
        );
    }
    assert!(report.all_pass());
}
